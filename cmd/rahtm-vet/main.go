// Command rahtm-vet runs the rahtm-specific static-analysis suite
// (internal/analysis) over the given package patterns — by default the
// whole module — and exits non-zero if any invariant is violated.
//
//	go run ./cmd/rahtm-vet ./...
//
// The suite enforces what stock vet cannot: deterministic map iteration
// in bit-identical packages (detrange), no global math/rand in library
// code (globalrand), cancellation polling in solver loops and no
// context.Background in internal code (ctxpoll), no exact float
// comparisons outside tolerance helpers (floateq), batched telemetry
// counters in hot loops (telemetrybatch), no mutation or undocumented
// escape of frozen-CSR row aliases (csralias), cancellable-or-joined
// goroutines in the concurrent packages (goroutinejoin), mutex copy and
// release discipline (lockdiscipline), and telemetry-scope propagation
// through ctx-carrying functions (scopeprop). Individual findings are
// suppressed, with a mandatory justification, by
//
//	//rahtm:allow(<analyzer>): <reason>
//
// on the offending line or the line above; unused or misnamed allows are
// themselves errors. See DESIGN.md §9 and §14.
//
// With -json, every diagnostic — active and suppressed — is emitted as
// one JSON object per line ({analyzer, file, line, col, message, allow,
// reason}), the machine-readable stream CI archives as a build artifact.
// The exit code still reflects only the active findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rahtm/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic (active and suppressed) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rahtm-vet [-C dir] [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
		os.Exit(2)
	}
	active, suppressed, err := analysis.RunPackagesAll(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range active {
			if err := enc.Encode(d.JSON(false)); err != nil {
				fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
				os.Exit(2)
			}
		}
		for _, d := range suppressed {
			if err := enc.Encode(d.JSON(true)); err != nil {
				fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range active {
			fmt.Println(d)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "rahtm-vet: %d finding(s) in %d package(s)\n", len(active), len(pkgs))
		os.Exit(1)
	}
}
