package main

import (
	"math"
	"testing"
)

// TestPercentileSmallSamples pins the degenerate sample sets: empty must
// yield 0 (a NaN would make the JSON report unencodable), one sample is
// every percentile of itself, and two samples split at the median.
func TestPercentileSmallSamples(t *testing.T) {
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := percentile(nil, q); got != 0 {
			t.Fatalf("percentile(nil, %v) = %v, want 0", q, got)
		}
		if got := percentile([]float64{7.5}, q); got != 7.5 {
			t.Fatalf("percentile([7.5], %v) = %v, want 7.5", q, got)
		}
	}
	if math.IsNaN(percentile(nil, 0.95)) {
		t.Fatal("empty percentile is NaN")
	}
	two := []float64{1, 9}
	if got := percentile(two, 0.50); got != 1 {
		t.Fatalf("p50 of {1,9} = %v, want 1", got)
	}
	if got := percentile(two, 0.95); got != 9 {
		t.Fatalf("p95 of {1,9} = %v, want 9", got)
	}
	if got := percentile(two, 0.25); got != 1 {
		t.Fatalf("p25 of {1,9} = %v, want 1", got)
	}
}
