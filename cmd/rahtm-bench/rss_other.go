//go:build !linux

package main

// peakRSSMB is unavailable off Linux; the scale report records 0.
func peakRSSMB() float64 { return 0 }
