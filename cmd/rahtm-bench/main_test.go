package main

import "testing"

func TestParseTopo(t *testing.T) {
	tp, err := parseTopo("4x4x4x4x2")
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 512 || tp.NumDims() != 5 {
		t.Fatalf("parsed %v", tp)
	}
	tp, err = parseTopo(" 8X2 ")
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 16 {
		t.Fatalf("parsed %v", tp)
	}
	for _, bad := range []string{"", "4x", "axb", "4x0", "-2"} {
		if _, err := parseTopo(bad); err == nil {
			t.Fatalf("parseTopo(%q) should fail", bad)
		}
	}
}
