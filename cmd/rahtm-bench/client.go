package main

// Client mode: -serve-addr points rahtm-bench at a running rahtm-serve
// daemon and turns it into a load generator. The suite workloads become
// /solve requests issued from -concurrency goroutines until -requests
// complete; the report is the client-observed latency distribution
// (p50/p95/p99) and the daemon's cache-hit rate.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rahtm"
)

// serveJSON is the client-mode section of the -json report.
type serveJSON struct {
	Addr        string  `json:"addr"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected"` // 429s
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cache_hits"`
	CacheRate   float64 `json:"cache_hit_rate"`
	Degraded    int     `json:"degraded"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	WallMS      float64 `json:"wall_ms"`
	// Slowest echoes the daemon's /debug/requests slowest board after the
	// run, so the report links straight to the traces worth examining.
	Slowest []slowTrace `json:"slowest,omitempty"`
}

// slowTrace is one row of the daemon's slowest-completed board — the
// subset of the /debug/requests entry the report cares about.
type slowTrace struct {
	TraceID  string  `json:"trace_id"`
	Workload string  `json:"workload,omitempty"`
	Mapper   string  `json:"mapper,omitempty"`
	QueueMS  float64 `json:"queue_ms,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	Status   string  `json:"status"`
	Cached   bool    `json:"cached,omitempty"`
}

// clientOutcome is one request's client-side observation.
type clientOutcome struct {
	latency  time.Duration
	status   int
	trace    string // X-Rahtm-Trace-Id response header
	cached   bool
	degraded bool
	err      error
}

// runServeClient load-tests the daemon at addr and reports; it is the whole
// of rahtm-bench when -serve-addr is set.
func runServeClient(addr string, ws []*rahtm.Workload, topo []int, conc, requests, concurrency int, deadline time.Duration, jsonOut string) error {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if requests < 1 {
		requests = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}

	// Pre-encode one request body per suite workload; the round-robin over
	// them gives the daemon a mix of cache hits and misses.
	bodies := make([][]byte, len(ws))
	for i, w := range ws {
		req := rahtm.Request{Workload: w.Name, Topo: topo, Conc: conc}
		if deadline > 0 {
			req.DeadlineMS = int64(deadline / time.Millisecond)
		}
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	fmt.Printf("load-testing %s: %d requests, concurrency %d, %d workloads\n",
		base, requests, concurrency, len(ws))

	client := &http.Client{}
	outcomes := make([]clientOutcome, requests)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = oneRequest(client, base, bodies[i%len(bodies)])
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := summarize(base, requests, concurrency, outcomes)
	rep.WallMS = ms(wall)
	rep.Slowest = fetchSlowTraces(client, base, 5)
	printServeReport(rep, outcomes)

	if jsonOut != "" {
		var out benchJSON
		out.Config.Topology = dimsString(topo)
		out.Config.Procs = product(topo) * conc
		out.Config.Conc = conc
		out.Config.Fig = "serve"
		out.Serve = &rep
		b, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(jsonOut, append(b, '\n'), 0o644)
	}
	return nil
}

// oneRequest posts one solve and records the client-side view.
func oneRequest(client *http.Client, base string, body []byte) clientOutcome {
	start := time.Now()
	resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return clientOutcome{latency: time.Since(start), status: -1, err: err}
	}
	defer resp.Body.Close()
	out := clientOutcome{status: resp.StatusCode, trace: resp.Header.Get("X-Rahtm-Trace-Id")}
	var res rahtm.Result
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			out.err = err
		} else {
			out.cached = res.Cached
			out.degraded = res.Degraded
		}
	}
	out.latency = time.Since(start)
	return out
}

// summarize reduces the outcomes to the serve report row.
func summarize(addr string, requests, concurrency int, outcomes []clientOutcome) serveJSON {
	rep := serveJSON{Addr: addr, Requests: requests, Concurrency: concurrency}
	var lats []float64
	var sum float64
	for _, o := range outcomes {
		switch {
		case o.status == http.StatusOK && o.err == nil:
			rep.OK++
			if o.cached {
				rep.CacheHits++
			}
			if o.degraded {
				rep.Degraded++
			}
			l := ms(o.latency)
			lats = append(lats, l)
			sum += l
		case o.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if rep.OK > 0 {
		rep.CacheRate = float64(rep.CacheHits) / float64(rep.OK)
		rep.MeanMS = sum / float64(rep.OK)
		sort.Float64s(lats)
		rep.P50MS = percentile(lats, 0.50)
		rep.P95MS = percentile(lats, 0.95)
		rep.P99MS = percentile(lats, 0.99)
	}
	return rep
}

// percentile reads q from an ascending sample set (nearest-rank). An empty
// sample set yields 0, never NaN — the value lands in JSON reports, and
// encoding/json refuses NaN outright. A single sample is every percentile
// of itself.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fetchSlowTraces pulls the daemon's slowest-completed board after the
// run; failures degrade to an empty list (the load report stands alone).
func fetchSlowTraces(client *http.Client, base string, n int) []slowTrace {
	resp, err := client.Get(base + "/debug/requests")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var view struct {
		Slowest []slowTrace `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil
	}
	if len(view.Slowest) > n {
		view.Slowest = view.Slowest[:n]
	}
	return view.Slowest
}

func printServeReport(rep serveJSON, outcomes []clientOutcome) {
	fmt.Printf("\n%d ok, %d rejected (429), %d errors in %v\n",
		rep.OK, rep.Rejected, rep.Errors, time.Duration(rep.WallMS*float64(time.Millisecond)).Round(time.Millisecond))
	if rep.OK == 0 {
		for _, o := range outcomes {
			if o.err != nil {
				fmt.Printf("first error: %v\n", o.err)
				break
			}
		}
		return
	}
	fmt.Printf("latency   : p50 %.1fms  p95 %.1fms  p99 %.1fms  (mean %.1fms)\n",
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MeanMS)
	fmt.Printf("cache     : %d/%d hits (%.0f%%)\n", rep.CacheHits, rep.OK, 100*rep.CacheRate)
	if rep.Degraded > 0 {
		fmt.Printf("degraded  : %d completions hit their deadline\n", rep.Degraded)
	}
	for _, o := range outcomes {
		if o.status == http.StatusOK && o.trace != "" {
			fmt.Printf("traces    : e.g. %s (X-Rahtm-Trace-Id; inspect via /debug/requests?trace=...)\n", o.trace)
			break
		}
	}
	if len(rep.Slowest) > 0 {
		fmt.Printf("slowest   :\n")
		for _, t := range rep.Slowest {
			label := t.Status
			if t.Cached {
				label += " cached"
			}
			fmt.Printf("  %-16s  %-8s  queue %.1fms  wall %.1fms  %s\n",
				t.TraceID, t.Workload, t.QueueMS, t.WallMS, label)
		}
	}
}

func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

func product(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
