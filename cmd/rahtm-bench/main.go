// Command rahtm-bench regenerates the paper's evaluation tables and
// figures on the simulated platform:
//
//	rahtm-bench -fig 8            # overall execution time (Figure 8)
//	rahtm-bench -fig 9            # comm/comp fractions    (Figure 9)
//	rahtm-bench -fig 10           # communication time     (Figure 10)
//	rahtm-bench -fig opt          # optimization time      (Section V-B)
//	rahtm-bench -fig all
//
// Scale and topology are adjustable:
//
//	rahtm-bench -topo 4x4x4x4x2 -procs 16384 -conc 32 -fig 10
//
// defaults to a laptop-scale configuration (4x4x4 torus, 256 processes,
// concentration 4) that finishes in seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rahtm"
)

func main() {
	var (
		topoSpec = flag.String("topo", "4x4x4", "torus dimensions, e.g. 4x4x4x4x2")
		procs    = flag.Int("procs", 256, "number of MPI processes")
		conc     = flag.Int("conc", 4, "processes per node (concentration factor)")
		fig      = flag.String("fig", "all", "which result to regenerate: 8, 9, 10, opt, or all")
		beam     = flag.Int("beam", 0, "Phase 3 beam width override (0 = paper default 64)")
		orient   = flag.Int("orient", 0, "Phase 3 orientation cap override (0 = default)")
		timeout  = flag.Duration("timeout", 0, "time budget for the whole run; on expiry RAHTM degrades to best-so-far mappings")
		verbose  = flag.Bool("verbose", false, "trace pipeline phases and solver progress to stderr")
		pprofOut = flag.String("pprof", "", "write a CPU profile to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t, err := parseTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	if t.N()**conc != *procs {
		fatal(fmt.Errorf("%d processes != %d nodes x %d concentration", *procs, t.N(), *conc))
	}
	ws, err := rahtm.Suite(*procs)
	if err != nil {
		fatal(err)
	}
	rahtmMapper := rahtm.Mapper{}
	if *beam > 0 {
		rahtmMapper.Merge.BeamWidth = *beam
	}
	if *orient > 0 {
		rahtmMapper.Merge.MaxOrientations = *orient
	}
	if *verbose {
		rahtmMapper.Observer = rahtm.NewLogObserver(os.Stderr)
	}
	ms := rahtm.StandardMappers(t)
	ms[len(ms)-1] = rahtmMapper

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Printf("RAHTM evaluation on %s, %d processes, concentration %d\n\n", t, *procs, *conc)

	needCompare := *fig == "8" || *fig == "10" || *fig == "all"
	var cs []*rahtm.Comparison
	if needCompare {
		start := time.Now()
		cs, err = rahtm.CompareSuiteCtx(ctx, ws, t, *conc, ms, rahtm.Model{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(suite mapped and simulated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	switch *fig {
	case "8":
		must(rahtm.WriteTable(os.Stdout, cs, "exec"))
	case "9":
		must(rahtm.CommFractionTable(os.Stdout, ws, t, *conc, ms[0], rahtm.Model{}))
	case "10":
		must(rahtm.WriteTable(os.Stdout, cs, "comm"))
	case "opt":
		optimizationTime(ctx, ws, t, *conc, rahtmMapper)
	case "all":
		must(rahtm.CommFractionTable(os.Stdout, ws, t, *conc, ms[0], rahtm.Model{}))
		fmt.Println()
		must(rahtm.WriteTable(os.Stdout, cs, "comm"))
		fmt.Println()
		must(rahtm.WriteTable(os.Stdout, cs, "exec"))
		fmt.Println()
		optimizationTime(ctx, ws, t, *conc, rahtmMapper)
	default:
		fatal(fmt.Errorf("unknown -fig %q (want 8, 9, 10, opt or all)", *fig))
	}
}

// optimizationTime reports RAHTM's offline mapping cost per benchmark
// (the Section V-B discussion: minutes to hours at the paper's scale).
func optimizationTime(ctx context.Context, ws []*rahtm.Workload, t *rahtm.Torus, conc int, m rahtm.Mapper) {
	fmt.Println("offline mapping computation time (Section V-B)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "benchmark", "cluster", "map", "merge", "total")
	for _, w := range ws {
		res, err := m.PipelineCtx(ctx, w, t, conc)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", w.Name, err)
			continue
		}
		s := res.Stats
		total := s.ClusterTime + s.MapTime + s.MergeTime
		note := ""
		if s.Degraded {
			note = "  (degraded: budget expired)"
		}
		fmt.Printf("%-10s %12v %12v %12v %12v%s\n", w.Name,
			s.ClusterTime.Round(time.Millisecond), s.MapTime.Round(time.Millisecond),
			s.MergeTime.Round(time.Millisecond), total.Round(time.Millisecond), note)
	}
}

func parseTopo(spec string) (*rahtm.Torus, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad topology spec %q", spec)
		}
		dims = append(dims, v)
	}
	return rahtm.NewTorus(dims...), nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-bench:", err)
	os.Exit(1)
}
