// Command rahtm-bench regenerates the paper's evaluation tables and
// figures on the simulated platform:
//
//	rahtm-bench -fig 8            # overall execution time (Figure 8)
//	rahtm-bench -fig 9            # comm/comp fractions    (Figure 9)
//	rahtm-bench -fig 10           # communication time     (Figure 10)
//	rahtm-bench -fig opt          # optimization time      (Section V-B)
//	rahtm-bench -fig scale        # 512/4k/16k/64k scaling trajectory
//	rahtm-bench -fig all
//
// Scale and topology are adjustable:
//
//	rahtm-bench -topo 4x4x4x4x2 -procs 16384 -conc 32 -fig 10
//
// defaults to a laptop-scale configuration (4x4x4 torus, 256 processes,
// concentration 4) that finishes in seconds.
//
// With -serve-addr the command becomes a load-test client for a running
// rahtm-serve daemon, reporting latency percentiles and the cache-hit rate:
//
//	rahtm-bench -serve-addr localhost:8080 -requests 64 -concurrency 8 -json load.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rahtm"
)

func main() {
	var (
		topoSpec = flag.String("topo", "4x4x4", "torus dimensions, e.g. 4x4x4x4x2")
		procs    = flag.Int("procs", 256, "number of MPI processes")
		conc     = flag.Int("conc", 4, "processes per node (concentration factor)")
		fig      = flag.String("fig", "all", "which result to regenerate: 8, 9, 10, opt, scale, or all")
		scaleMax = flag.Int("scale-max", 16384, "-fig scale: largest process count of the 512/4096/16384/65536 ladder to run")
		beam     = flag.Int("beam", 0, "Phase 3 beam width override (0 = paper default 64)")
		orient   = flag.Int("orient", 0, "Phase 3 orientation cap override (0 = default)")
		timeout  = flag.Duration("timeout", 0, "time budget for the whole run; on expiry RAHTM degrades to best-so-far mappings (client mode: per-request deadline)")
		srvAddr  = flag.String("serve-addr", "", "client mode: load-test the rahtm-serve daemon at this address instead of benchmarking locally")
		srvReqs  = flag.Int("requests", 32, "client mode: total requests to issue")
		srvConc  = flag.Int("concurrency", 4, "client mode: concurrent request goroutines")
		workers  = flag.Int("parallelism", 0, "RAHTM scheduler worker goroutines (0 = all CPUs, 1 = sequential); results are identical for every setting")
		verbose  = flag.Bool("verbose", false, "trace pipeline phases and solver progress to stderr")
		jsonOut  = flag.String("json", "", "also write machine-readable results (per-case MCL, wall times, pipeline phase stats, counter deltas) to this file")
		pprofOut = flag.String("pprof", "", "write a CPU profile to this file")
		memOut   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metrics  = flag.String("metrics-addr", "", "serve live telemetry (expvar /debug/vars + /metrics progress snapshot) on this address while benchmarking")
		traceOut = flag.String("trace-out", "", "write the RAHTM scheduler span timeline here (Chrome trace-event JSON; a .jsonl suffix selects JSONL)")
		report   = flag.Bool("report", false, "print the end-of-run telemetry report to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t, err := parseTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	if t.N()**conc != *procs {
		fatal(fmt.Errorf("%d processes != %d nodes x %d concentration", *procs, t.N(), *conc))
	}
	ws, err := rahtm.Suite(*procs)
	if err != nil {
		fatal(err)
	}

	if *srvAddr != "" {
		dims := make([]int, t.NumDims())
		for d := range dims {
			dims[d] = t.Dim(d)
		}
		must(runServeClient(*srvAddr, ws, dims, *conc, *srvReqs, *srvConc, *timeout, *jsonOut))
		return
	}
	rahtmMapper := rahtm.Mapper{Parallelism: *workers}
	if *beam > 0 {
		rahtmMapper.Merge.BeamWidth = *beam
	}
	if *orient > 0 {
		rahtmMapper.Merge.MaxOrientations = *orient
	}
	// Observer stack: logging, span recording and live progress compose
	// through a tee on the RAHTM mapper. Spans from every pipeline run of
	// the session land in one timeline.
	var observers []rahtm.Observer
	var recorder *rahtm.SpanRecorder
	var tracker *rahtm.ProgressTracker
	if *verbose {
		observers = append(observers, rahtm.NewLogObserver(os.Stderr))
		eff := *workers
		if eff == 0 {
			eff = runtime.NumCPU()
		}
		fmt.Fprintf(os.Stderr, "rahtm-bench: scheduler parallelism %d (GOMAXPROCS %d)\n", eff, runtime.GOMAXPROCS(0))
	}
	if *traceOut != "" {
		recorder = rahtm.NewSpanRecorder()
		observers = append(observers, recorder)
	}
	if *metrics != "" {
		tracker = rahtm.NewProgressTracker()
		observers = append(observers, tracker)
	}
	if len(observers) > 0 {
		rahtmMapper.Observer = rahtm.TeeObservers(observers...)
	}
	if *metrics != "" {
		srv, err := rahtm.ServeMetrics(*metrics, tracker.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rahtm-bench: telemetry endpoint at %s/metrics\n", srv.URL())
	}
	ms := rahtm.StandardMappers(t)
	ms[len(ms)-1] = rahtmMapper

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			must(pprof.WriteHeapProfile(f))
		}()
	}

	fmt.Printf("RAHTM evaluation on %s, %d processes, concentration %d\n\n", t, *procs, *conc)

	needCompare := *fig == "8" || *fig == "10" || *fig == "all"
	var cs []*rahtm.Comparison
	if needCompare {
		start := time.Now()
		cs, err = rahtm.CompareSuiteCtx(ctx, ws, t, *conc, ms, rahtm.Model{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(suite mapped and simulated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	var pipes []pipelineJSON
	var scale []scaleJSON
	switch *fig {
	case "8":
		must(rahtm.WriteTable(os.Stdout, cs, "exec"))
	case "9":
		must(rahtm.CommFractionTable(os.Stdout, ws, t, *conc, ms[0], rahtm.Model{}))
	case "10":
		must(rahtm.WriteTable(os.Stdout, cs, "comm"))
	case "opt":
		pipes = optimizationTime(ctx, ws, t, *conc, rahtmMapper)
	case "scale":
		scale = scaleTrajectory(ctx, rahtmMapper, *scaleMax)
	case "all":
		must(rahtm.CommFractionTable(os.Stdout, ws, t, *conc, ms[0], rahtm.Model{}))
		fmt.Println()
		must(rahtm.WriteTable(os.Stdout, cs, "comm"))
		fmt.Println()
		must(rahtm.WriteTable(os.Stdout, cs, "exec"))
		fmt.Println()
		pipes = optimizationTime(ctx, ws, t, *conc, rahtmMapper)
	default:
		fatal(fmt.Errorf("unknown -fig %q (want 8, 9, 10, opt, scale or all)", *fig))
	}

	if *jsonOut != "" {
		if pipes == nil && *fig != "scale" {
			// The selected figure did not run the pipeline stats pass;
			// run it silently so the JSON report is complete.
			pipes = collectPipelineStats(ctx, ws, t, *conc, rahtmMapper)
		}
		must(writeJSON(*jsonOut, t, *procs, *conc, *workers, *fig, cs, pipes, scale))
	}

	if *traceOut != "" && recorder != nil {
		must(writeTrace(*traceOut, recorder))
		fmt.Fprintf(os.Stderr, "rahtm-bench: wrote %d spans to %s\n", recorder.Len(), *traceOut)
	}
	if *report {
		// The session ran many pipelines, so print the counters-only
		// form; per-workload phase breakdowns are in -fig opt / -json.
		must(rahtm.WriteTelemetryReport(os.Stderr, nil))
	}
}

// writeTrace exports the recorded span timeline: Chrome trace-event JSON
// by default, JSONL when the path ends in .jsonl.
func writeTrace(path string, rec *rahtm.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = rec.WriteJSONL(f)
	} else {
		err = rec.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// benchJSON is the machine-readable report written by -json: enough to
// track the performance trajectory of the mapper across revisions.
type benchJSON struct {
	Config struct {
		Topology    string `json:"topology"`
		Procs       int    `json:"procs"`
		Conc        int    `json:"conc"`
		Parallelism int    `json:"parallelism"` // requested; 0 = all CPUs
		GOMAXPROCS  int    `json:"gomaxprocs"`
		Fig         string `json:"fig"`
	} `json:"config"`
	Cases     []caseJSON     `json:"cases,omitempty"`
	Pipelines []pipelineJSON `json:"pipelines,omitempty"`
	// Scale is the -fig scale trajectory: one row per rung of the paper's
	// 512/4096/16384-process ladder.
	Scale []scaleJSON `json:"scale,omitempty"`
	// Metrics is the end-of-run snapshot of the process-wide telemetry
	// counters (cumulative across every pipeline in the session).
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Serve is the client-mode (-serve-addr) load-test report.
	Serve *serveJSON `json:"serve,omitempty"`
}

// caseJSON is one (workload, mapper) comparison row.
type caseJSON struct {
	Workload  string  `json:"workload"`
	Mapper    string  `json:"mapper"`
	MCL       float64 `json:"mcl"`
	HopBytes  float64 `json:"hop_bytes"`
	CommTimeS float64 `json:"comm_time_s"`
	ExecTimeS float64 `json:"exec_time_s"`
	RelComm   float64 `json:"rel_comm"`
	RelExec   float64 `json:"rel_exec"`
	MapWallMS float64 `json:"map_wall_ms"`
	Err       string  `json:"error,omitempty"`
}

// pipelineJSON is one workload's RAHTM pipeline phase breakdown.
type pipelineJSON struct {
	Workload       string  `json:"workload"`
	ClusterMS      float64 `json:"cluster_ms"`
	MapMS          float64 `json:"map_ms"`
	MergeMS        float64 `json:"merge_ms"`
	MapWorkMS      float64 `json:"map_work_ms"`
	MergeWorkMS    float64 `json:"merge_work_ms"`
	Subproblems    int     `json:"subproblems"`
	SubproblemsHit int     `json:"subproblems_hit"`
	Merges         int     `json:"merges"`
	MergesHit      int     `json:"merges_hit"`
	Parallelism    int     `json:"parallelism"` // effective worker count
	MCL            float64 `json:"mcl"`
	Degraded       bool    `json:"degraded"`
	Err            string  `json:"error,omitempty"`

	// Telemetry counter deltas attributed to this pipeline run.
	StencilHits    int64 `json:"stencil_hits"`
	StencilMisses  int64 `json:"stencil_misses"`
	LPPivots       int64 `json:"lp_pivots"`
	MILPNodes      int64 `json:"milp_nodes"`
	AnnealMoves    int64 `json:"anneal_moves"`
	BeamCandidates int64 `json:"beam_candidates"`
	BeamPruned     int64 `json:"beam_pruned"`
	SymmetryEvals  int64 `json:"symmetry_evals"`
	DeltaHits      int64 `json:"delta_hits"`      // merge combos scored sparsely
	DeltaFallbacks int64 `json:"delta_fallbacks"` // merge combos scored densely
}

// addMetrics fills the counter-delta columns from a per-run snapshot
// difference (rahtm.Metrics().Sub of the pre-run snapshot).
func (p *pipelineJSON) addMetrics(d rahtm.MetricsSnapshot) {
	p.StencilHits = d.Counter("routing.stencil.hits")
	p.StencilMisses = d.Counter("routing.stencil.misses")
	p.LPPivots = d.Counter("lp.pivots")
	p.MILPNodes = d.Counter("milp.nodes")
	p.AnnealMoves = d.Counter("anneal.moves")
	p.BeamCandidates = d.Counter("merge.beam.candidates")
	p.BeamPruned = d.Counter("merge.beam.candidates") - d.Counter("merge.beam.kept")
	p.SymmetryEvals = d.Counter("merge.symmetry.evals")
	p.DeltaHits = d.Counter("merge.delta.hits")
	p.DeltaFallbacks = d.Counter("merge.delta.fallbacks")
}

func pipelineRow(w *rahtm.Workload, res *rahtm.PipelineResult, err error) pipelineJSON {
	p := pipelineJSON{Workload: w.Name}
	if err != nil {
		p.Err = err.Error()
		return p
	}
	s := res.Stats
	p.ClusterMS = ms(s.ClusterTime)
	p.MapMS = ms(s.MapTime)
	p.MergeMS = ms(s.MergeTime)
	p.MapWorkMS = ms(s.MapWorkTime)
	p.MergeWorkMS = ms(s.MergeWorkTime)
	p.Subproblems = s.Subproblems
	p.SubproblemsHit = s.SubproblemsHit
	p.Merges = s.Merges
	p.MergesHit = s.MergesHit
	p.Parallelism = s.Parallelism
	p.MCL = res.MCL
	p.Degraded = s.Degraded
	return p
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// collectPipelineStats runs the RAHTM pipeline per workload solely to
// gather phase statistics for the JSON report.
func collectPipelineStats(ctx context.Context, ws []*rahtm.Workload, t *rahtm.Torus, conc int, m rahtm.Mapper) []pipelineJSON {
	out := make([]pipelineJSON, 0, len(ws))
	for _, w := range ws {
		prev := rahtm.Metrics()
		res, err := m.PipelineCtx(ctx, w, t, conc)
		row := pipelineRow(w, res, err)
		row.addMetrics(rahtm.Metrics().Sub(prev))
		out = append(out, row)
	}
	return out
}

func writeJSON(path string, t *rahtm.Torus, procs, conc, workers int, fig string, cs []*rahtm.Comparison, pipes []pipelineJSON, scale []scaleJSON) error {
	var rep benchJSON
	rep.Config.Topology = t.String()
	rep.Config.Procs = procs
	rep.Config.Conc = conc
	rep.Config.Parallelism = workers
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Config.Fig = fig
	for _, c := range cs {
		for _, r := range c.Rows {
			rep.Cases = append(rep.Cases, caseJSON{
				Workload:  c.Workload,
				Mapper:    r.Mapper,
				MCL:       r.MCL,
				HopBytes:  r.HopBytes,
				CommTimeS: r.CommTime,
				ExecTimeS: r.ExecTime,
				RelComm:   r.RelComm,
				RelExec:   r.RelExec,
				MapWallMS: ms(r.MapTime),
				Err:       r.Err,
			})
		}
	}
	rep.Pipelines = pipes
	rep.Scale = scale
	rep.Metrics = rahtm.Metrics().Counters
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// scaleJSON is one rung of the -fig scale ladder: the pipeline phase row
// plus the configuration it ran at, the end-to-end wall time, and the
// process's peak RSS when the rung finished. The RSS is a high-water mark,
// so it is monotone across rungs; the last rung's value is the run's peak.
type scaleJSON struct {
	Procs     int     `json:"procs"`
	Topology  string  `json:"topology"`
	Conc      int     `json:"conc"`
	WallMS    float64 `json:"wall_ms"`
	PeakRSSMB float64 `json:"peak_rss_mb"`
	pipelineJSON
}

// scaleLadder is the §V scaling ladder: a periodic 2-D halo exchange (the
// only suite workload whose process grid exists at every rung) on the
// BG/Q-style 2-ary tori at 512, 4096, the paper's full 16,384 processes,
// and a 65,536-process rung on a 2048-node torus.
var scaleLadder = []struct {
	procs, rows, cols int
	topo              string
	conc              int
}{
	{512, 16, 32, "4x4x4x2", 4},
	{4096, 64, 64, "4x4x4x4", 16},
	{16384, 128, 128, "4x4x4x4x2", 32},
	{65536, 256, 256, "4x4x4x4x4x2", 32},
}

// scaleTrajectory runs the ladder up to maxProcs and reports one row per
// rung. Counter deltas attribute delta-eval hits/fallbacks and solver
// effort to each rung individually.
func scaleTrajectory(ctx context.Context, m rahtm.Mapper, maxProcs int) []scaleJSON {
	fmt.Println("pipeline scaling trajectory (halo-2d)")
	fmt.Printf("%-7s %-12s %6s %12s %12s %10s %12s %10s\n", "procs", "topology", "conc", "merge", "wall", "mcl", "delta-evals", "peak-rss")
	var out []scaleJSON
	for _, lvl := range scaleLadder {
		if lvl.procs > maxProcs {
			continue
		}
		t, err := parseTopo(lvl.topo)
		if err != nil {
			fatal(err)
		}
		w := rahtm.Halo2D(lvl.rows, lvl.cols, 1)
		prev := rahtm.Metrics()
		start := time.Now()
		res, err := m.PipelineCtx(ctx, w, t, lvl.conc)
		wall := time.Since(start)
		row := scaleJSON{
			Procs:        lvl.procs,
			Topology:     t.String(),
			Conc:         lvl.conc,
			WallMS:       ms(wall),
			PeakRSSMB:    peakRSSMB(),
			pipelineJSON: pipelineRow(w, res, err),
		}
		row.addMetrics(rahtm.Metrics().Sub(prev))
		out = append(out, row)
		if err != nil {
			fmt.Printf("%-7d %-12s %6d  error: %v\n", lvl.procs, lvl.topo, lvl.conc, err)
			continue
		}
		fmt.Printf("%-7d %-12s %6d %12v %12v %10.3f %12d %8.0fMB\n",
			lvl.procs, lvl.topo, lvl.conc,
			res.Stats.MergeTime.Round(time.Millisecond), wall.Round(time.Millisecond),
			res.MCL, row.DeltaHits+row.DeltaFallbacks, row.PeakRSSMB)
	}
	return out
}

// optimizationTime reports RAHTM's offline mapping cost per benchmark
// (the Section V-B discussion: minutes to hours at the paper's scale) and
// returns the per-workload phase breakdowns for the JSON report.
func optimizationTime(ctx context.Context, ws []*rahtm.Workload, t *rahtm.Torus, conc int, m rahtm.Mapper) []pipelineJSON {
	fmt.Println("offline mapping computation time (Section V-B)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "benchmark", "cluster", "map", "merge", "total")
	out := make([]pipelineJSON, 0, len(ws))
	for _, w := range ws {
		prev := rahtm.Metrics()
		res, err := m.PipelineCtx(ctx, w, t, conc)
		row := pipelineRow(w, res, err)
		row.addMetrics(rahtm.Metrics().Sub(prev))
		out = append(out, row)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", w.Name, err)
			continue
		}
		s := res.Stats
		total := s.ClusterTime + s.MapTime + s.MergeTime
		note := ""
		if s.Degraded {
			note = "  (degraded: budget expired)"
		}
		fmt.Printf("%-10s %12v %12v %12v %12v%s\n", w.Name,
			s.ClusterTime.Round(time.Millisecond), s.MapTime.Round(time.Millisecond),
			s.MergeTime.Round(time.Millisecond), total.Round(time.Millisecond), note)
	}
	return out
}

func parseTopo(spec string) (*rahtm.Torus, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad topology spec %q", spec)
		}
		dims = append(dims, v)
	}
	return rahtm.NewTorus(dims...), nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-bench:", err)
	os.Exit(1)
}
