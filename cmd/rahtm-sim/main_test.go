package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadMapFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.map")
	if err := os.WriteFile(path, []byte("# header\n0\n1\n\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := readMapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0] != 0 || m[2] != 2 {
		t.Fatalf("mapping = %v", m)
	}
	bad := filepath.Join(dir, "bad.map")
	if err := os.WriteFile(bad, []byte("zero\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readMapFile(bad); err == nil {
		t.Fatal("bad line should fail")
	}
	if _, err := readMapFile(filepath.Join(dir, "missing.map")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSimBuildWorkload(t *testing.T) {
	w, err := buildWorkload("BT", "", 64)
	if err != nil || w.Procs() != 64 {
		t.Fatalf("BT: %v", err)
	}
	if _, err := buildWorkload("halo2d", "", 64); err == nil {
		t.Fatal("halo2d without grid should fail")
	}
	if _, err := buildWorkload("wat", "", 64); err == nil {
		t.Fatal("unknown workload should fail")
	}
}
