// Command rahtm-sim evaluates a mapping: channel-load metrics under the
// minimal-adaptive routing approximation and simulated per-iteration
// communication time.
//
//	rahtm-sim -workload CG -procs 256 -topo 4x4x4 -conc 4 -map cg.map
//	rahtm-sim -workload BT -procs 256 -topo 4x4x4 -conc 4 -mapper hilbert
//
// With -map the mapping comes from a map file produced by rahtm-map; with
// -mapper it is computed on the fly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rahtm"
)

func main() {
	var (
		topoSpec = flag.String("topo", "4x4x4", "torus dimensions")
		wl       = flag.String("workload", "CG", "benchmark: BT, SP, CG, halo2d, random")
		procs    = flag.Int("procs", 0, "number of processes (defaults to nodes x conc)")
		conc     = flag.Int("conc", 1, "processes per node")
		gridSpec = flag.String("grid", "", "logical process grid for halo workloads")
		mapFile  = flag.String("map", "", "map file (one node per line)")
		mapper   = flag.String("mapper", "", "compute the mapping with this mapper instead")
		linkBW   = flag.Float64("linkbw", 2e9, "link bandwidth, bytes/s")
		report   = flag.Bool("report", false, "print the telemetry counter report (stencil cache, solver effort) to stderr")
	)
	flag.Parse()

	dims, err := parseDims(*topoSpec)
	if err != nil {
		fatal(err)
	}
	topo := rahtm.NewTorus(dims...)
	if *procs == 0 {
		*procs = topo.N() * *conc
	}

	w, err := buildWorkload(*wl, *gridSpec, *procs)
	if err != nil {
		fatal(err)
	}

	var mapping rahtm.Mapping
	switch {
	case *mapFile != "":
		mapping, err = readMapFileTopo(*mapFile, topo)
	case *mapper != "":
		var factory rahtm.MapperFactory
		factory, err = rahtm.MapperByName(*mapper)
		if err == nil {
			mapping, err = factory(topo).MapProcs(w, topo, *conc)
		}
	default:
		err = fmt.Errorf("need -map or -mapper")
	}
	if err != nil {
		fatal(err)
	}
	if len(mapping) != w.Procs() {
		fatal(fmt.Errorf("mapping covers %d processes, workload has %d", len(mapping), w.Procs()))
	}
	if err := mapping.Validate(topo.N(), false); err != nil {
		fatal(err)
	}

	rep := rahtm.Measure(topo, w.Graph, mapping)
	fmt.Printf("workload  : %s (%d processes on %s, %d per node)\n", w.Name, w.Procs(), topo, *conc)
	fmt.Printf("quality   : %s\n", rep)
	comm, err := rahtm.CommTime(topo, w.Graph, mapping, rahtm.Model{LinkBandwidth: *linkBW})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("comm time : %.6gs/iteration (link %.6gs, injection %.6gs, ejection %.6gs)\n",
		comm.Time, comm.LinkTime, comm.InjectionTime, comm.EjectionTime)

	if *report {
		// Counters-only form: the evaluation routes traffic through the
		// same stencil cache as the mapper, so the cache and solver
		// counters reflect this run (plus any -mapper pipeline work).
		if err := rahtm.WriteTelemetryReport(os.Stderr, nil); err != nil {
			fatal(err)
		}
	}
}

func buildWorkload(name, gridSpec string, procs int) (*rahtm.Workload, error) {
	var grid []int
	if gridSpec != "" {
		g, err := parseDims(gridSpec)
		if err != nil {
			return nil, err
		}
		grid = g
	}
	switch strings.ToLower(name) {
	case "bt", "sp", "cg":
		return rahtm.WorkloadByName(name, procs)
	case "halo2d":
		if len(grid) != 2 {
			return nil, fmt.Errorf("halo2d needs -grid RxC")
		}
		return rahtm.Halo2D(grid[0], grid[1], 10), nil
	case "random":
		return rahtm.RandomNeighbors(procs, 4, 10, 1), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// readMapFile reads either map-file format (node ranks, or BG/Q-style
// coordinate tuples) without topology validation; rank-format only here —
// use readMapFileTopo when a topology is at hand.
func readMapFile(path string) (rahtm.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m rahtm.Mapping
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad map line %q", line)
		}
		m = append(m, v)
	}
	return m, sc.Err()
}

// readMapFileTopo reads either map-file format with validation against topo.
func readMapFileTopo(path string, topo *rahtm.Torus) (rahtm.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rahtm.ReadMapFile(f, topo)
}

func parseDims(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-sim:", err)
	os.Exit(1)
}
