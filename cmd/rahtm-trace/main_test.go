package main

import (
	"os"
	"path/filepath"
	"testing"

	"rahtm"
)

func TestPrintStatsAndConversions(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(prof, []byte("procs 4\np2p 0 1 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Exercise the conversion helpers through the library the command uses.
	f, err := os.Open(prof)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rahtm.ParseProfile(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	printStats(g) // must not panic on tiny graphs
	printStats(rahtm.NewGraph(1))

	// Round trip graph -> profile -> graph.
	out := filepath.Join(dir, "q.txt")
	fo, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := rahtm.ProfileFromGraph(g).Write(fo); err != nil {
		t.Fatal(err)
	}
	fo.Close()
	fi, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()
	p2, err := rahtm.ParseProfile(fi)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p2.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2, 1e-9) {
		t.Fatal("round trip changed the graph")
	}
}
