// Command rahtm-trace inspects and converts communication profiles (the
// IPM-profile stand-in format):
//
//	rahtm-trace -in app.profile -stats           # volumes, degree, partners
//	rahtm-trace -in app.profile -out comm.txt    # expand to a plain graph
//	rahtm-trace -graph comm.txt -profile out.pr  # wrap a graph as a profile
//
// With -request the profile becomes a ready-to-POST rahtm-serve request:
// a rahtm.Request JSON with the communication graph inlined,
//
//	rahtm-trace -in app.profile -topo 4x4x4 -conc 4 -request req.json
//	curl -s localhost:8080/solve -d @req.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rahtm"
)

func main() {
	var (
		in       = flag.String("in", "", "input profile file")
		graphIn  = flag.String("graph", "", "input plain graph file (instead of -in)")
		out      = flag.String("out", "", "write the expanded communication graph here")
		profOut  = flag.String("profile", "", "write a profile here (for -graph input)")
		reqOut   = flag.String("request", "", "write a rahtm-serve request JSON (inlined graph) here; needs -topo")
		topoSpec = flag.String("topo", "", "torus dimensions for -request, e.g. 4x4x4")
		conc     = flag.Int("conc", 1, "processes per node for -request")
		mapper   = flag.String("mapper", "", "mapper name for -request (empty = rahtm)")
		deadline = flag.Int64("deadline-ms", 0, "solve budget in milliseconds for -request (0 = none)")
		stats    = flag.Bool("stats", true, "print traffic statistics")
		report   = flag.Bool("report", false, "print the telemetry counter report (profile expansion volume) to stderr")
	)
	flag.Parse()

	var g *rahtm.Comm
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		p, err := rahtm.ParseProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		g, err = p.Graph()
		if err != nil {
			fatal(err)
		}
	case *graphIn != "":
		f, err := os.Open(*graphIn)
		if err != nil {
			fatal(err)
		}
		var gerr error
		g, gerr = rahtm.ReadGraph(f)
		f.Close()
		if gerr != nil {
			fatal(gerr)
		}
	default:
		fatal(fmt.Errorf("need -in or -graph"))
	}

	if *stats {
		printStats(g)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := g.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		if err := rahtm.ProfileFromGraph(g).Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *reqOut != "" {
		if err := writeRequest(*reqOut, g, *topoSpec, *conc, *mapper, *deadline); err != nil {
			fatal(err)
		}
	}

	if *report {
		if err := rahtm.WriteTelemetryReport(os.Stderr, nil); err != nil {
			fatal(err)
		}
	}
}

// writeRequest emits the graph as a rahtm.Request JSON ready to POST to a
// rahtm-serve daemon's /solve endpoint.
func writeRequest(path string, g *rahtm.Comm, topoSpec string, conc int, mapper string, deadlineMS int64) error {
	if topoSpec == "" {
		return fmt.Errorf("-request needs -topo (torus dimensions, e.g. 4x4x4)")
	}
	dims, err := parseDims(topoSpec)
	if err != nil {
		return err
	}
	var inline strings.Builder
	if _, err := g.WriteTo(&inline); err != nil {
		return err
	}
	req := rahtm.Request{
		Graph:      inline.String(),
		Topo:       dims,
		Conc:       conc,
		Mapper:     mapper,
		DeadlineMS: deadlineMS,
	}
	// Validate locally so a bad request dies here, not at the daemon.
	if _, _, err := req.Materialize(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func parseDims(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func printStats(g *rahtm.Comm) {
	n := g.N()
	flows := g.Flows()
	degrees := make([]int, n)
	vols := make([]float64, n)
	for _, f := range flows {
		degrees[f.Src]++
		vols[f.Src] += f.Vol
	}
	maxDeg, maxVol := 0, 0.0
	active := 0
	for v := 0; v < n; v++ {
		if degrees[v] > maxDeg {
			maxDeg = degrees[v]
		}
		if vols[v] > maxVol {
			maxVol = vols[v]
		}
		if degrees[v] > 0 {
			active++
		}
	}
	fmt.Printf("processes      : %d (%d senders)\n", n, active)
	fmt.Printf("directed flows : %d\n", len(flows))
	fmt.Printf("total volume   : %g\n", g.TotalVolume())
	fmt.Printf("max out-degree : %d\n", maxDeg)
	fmt.Printf("max out-volume : %g\n", maxVol)
	// Top flows.
	sorted := append([]rahtm.Flow(nil), flows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Vol > sorted[j].Vol })
	top := 5
	if len(sorted) < top {
		top = len(sorted)
	}
	if top > 0 {
		fmt.Println("heaviest flows :")
		for _, f := range sorted[:top] {
			fmt.Printf("  %6d -> %-6d %g\n", f.Src, f.Dst, f.Vol)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-trace:", err)
	os.Exit(1)
}
