// Package rahtm is a Go implementation of RAHTM — Routing Algorithm Aware
// Hierarchical Task Mapping (Abdel-Gawad, Thottethodi, Bhatele; SC 2014) —
// together with every substrate the paper relies on: an LP/MILP solver, a
// k-ary n-torus topology model, a minimal-adaptive-routing channel-load
// evaluator, the baseline mappers the paper compares against, synthetic NAS
// BT/SP/CG communication workloads, and a flow-level network performance
// model.
//
// The central operation maps an MPI-style communication graph onto a torus
// so as to minimize the maximum channel load (MCL) under minimal adaptive
// routing. The unified entry point is Solve, which takes a serializable
// Request and returns a Result with the mapping and its quality metrics —
// the same types the rahtm-serve daemon speaks over HTTP/JSON:
//
//	res, _ := rahtm.Solve(ctx, rahtm.Request{
//		Workload: "BT", Procs: 1024,       // NAS BT on 1024 processes
//		Topo:     []int{4, 4, 4},          // 64-node 3-D torus
//		Conc:     16,                      // 16 processes per node
//	})
//	_ = res.Mapping                            // rank -> node
//	_ = res.MCL                                // max channel load
//
// Library callers holding Workload/Torus values pass them directly via
// Request.Work and Request.Torus, or use the Mapper methods, which are thin
// wrappers over the same path.
//
// Observability: pipeline runs emit trace events to an Observer
// (observer.go), always-on metrics counters snapshot via Metrics(), and
// span timelines / live progress attach through SpanRecorder,
// ProgressTracker, and ServeMetrics (telemetry.go; DESIGN.md §8).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results of every figure and table.
package rahtm

import (
	"context"

	"rahtm/internal/core"
	"rahtm/internal/graph"
	"rahtm/internal/hiermap"
	"rahtm/internal/mappers"
	"rahtm/internal/merge"
	"rahtm/internal/metrics"
	"rahtm/internal/netsim"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
	"rahtm/internal/workload"
)

// Re-exported core types. The library keeps implementations in internal
// packages; these aliases are the supported public surface.
type (
	// Torus is a k-ary n-dimensional torus or mesh topology.
	Torus = topology.Torus
	// Mapping assigns tasks (process ranks or node-level clusters) to
	// topology nodes.
	Mapping = topology.Mapping
	// Comm is a weighted directed communication graph.
	Comm = graph.Comm
	// Flow is one directed communication demand of a Comm.
	Flow = graph.Flow
	// Workload is a benchmark communication pattern with its metadata.
	Workload = workload.Workload
	// Report carries mapping-quality metrics.
	Report = metrics.Report
	// CommReport breaks down simulated communication time.
	CommReport = netsim.CommReport
	// Model holds network bandwidth parameters for simulation.
	Model = netsim.Model
	// PipelineResult is the full RAHTM pipeline output.
	PipelineResult = core.Result
	// PipelineConfig tunes the RAHTM pipeline.
	PipelineConfig = core.Config
	// LeafConfig tunes the Phase 2 subproblem solver.
	LeafConfig = hiermap.Config
	// MergeConfig tunes the Phase 3 beam search.
	MergeConfig = merge.Config
	// ProcMapper is anything that can map a workload's processes onto a
	// topology (RAHTM itself and all baselines implement it).
	ProcMapper = mappers.Mapper
)

// Leaf solver methods for LeafConfig.Method.
const (
	LeafAuto       = hiermap.Auto
	LeafMILP       = hiermap.MILP
	LeafExhaustive = hiermap.Exhaustive
	LeafAnneal     = hiermap.Anneal
)

// Topology constructors.
var (
	// NewTorus builds a fully wrapped torus.
	NewTorus = topology.NewTorus
	// NewMesh builds an unwrapped mesh.
	NewMesh = topology.NewMesh
	// NewGraph builds an empty communication graph over n vertices.
	NewGraph = graph.New
	// Identity returns the mapping task i -> node i.
	Identity = topology.Identity
)

// Workload generators (the paper's benchmarks and generic patterns).
var (
	BT              = workload.BT
	SP              = workload.SP
	CG              = workload.CG
	WorkloadByName  = workload.ByName
	Suite           = workload.Suite
	Halo2D          = workload.Halo2D
	Halo3D          = workload.Halo3D
	RandomNeighbors = workload.RandomNeighbors
	Ring            = workload.Ring
	Transpose       = workload.Transpose
	Sweep           = workload.Sweep
	Spectral        = workload.Spectral
	ManyToOne       = workload.ManyToOne
)

// PhasedWorkload is a multi-phase application: distinct communication
// patterns separated by barriers. Map the Union graph; simulate with
// PhasedCommTime, which pays each phase's bottleneck in sequence.
type PhasedWorkload = workload.Phased

// NewPhased combines single-pattern workloads into a phased application.
var NewPhased = workload.NewPhased

// PhasedCommTime sums per-phase communication times for a mapping (phases
// are barrier-separated and do not overlap on the network).
func PhasedCommTime(t *Torus, phases []*Comm, m Mapping, model Model) (float64, []*CommReport, error) {
	return netsim.PhasedCommTime(t, phases, m, model)
}

// ReadGraph parses the plain-text communication graph format
// ("comm <n>" header, then "src dst vol" lines).
var ReadGraph = graph.Read

// Mapper runs the full RAHTM pipeline as a ProcMapper. The zero value uses
// the paper's defaults (beam width 64, exhaustive leaf solver up to 8-node
// cubes, annealing above).
type Mapper struct {
	// Leaf configures the Phase 2 cube solver.
	Leaf LeafConfig
	// Merge configures the Phase 3 beam search.
	Merge MergeConfig
	// DisableSiblingReuse turns off the symmetry caches.
	DisableSiblingReuse bool
	// Parallelism bounds the worker goroutines of the level-wise Phase 2/3
	// scheduler: 0 uses all CPUs, 1 runs fully sequentially. Results are
	// identical for every setting.
	Parallelism int
	// Observer receives pipeline trace events (nil = no tracing).
	Observer Observer
}

// Name implements ProcMapper.
func (Mapper) Name() string { return "RAHTM" }

// request builds the Solve request equivalent to a legacy method call.
func (m Mapper) request(w *Workload, t *Torus, conc int) Request {
	return Request{Work: w, Torus: t, Conc: conc, Config: &m}
}

// MapProcs implements ProcMapper: it runs clustering, hierarchical MILP
// mapping and beam merging, returning a process-to-node mapping.
//
// Deprecated: MapProcs/MapProcsCtx and Pipeline/PipelineCtx are the legacy
// split entry points; new code should call Solve with a Request, which
// subsumes both the context and the configuration (and is what the serving
// layer speaks). These wrappers remain for compatibility.
func (m Mapper) MapProcs(w *Workload, t *Torus, conc int) (Mapping, error) {
	return m.MapProcsCtx(context.Background(), w, t, conc)
}

// MapProcsCtx is MapProcs under a context. Canceling ctx aborts the
// pipeline promptly with ctx.Err(); letting its deadline expire instead
// degrades gracefully — the pipeline finishes from the best results found
// so far and still returns a valid mapping (flagged in the PipelineResult
// stats, which this method discards; use PipelineCtx to observe it).
//
// Deprecated: call Solve with a Request instead; Result.Mapping is this
// method's return value.
func (m Mapper) MapProcsCtx(ctx context.Context, w *Workload, t *Torus, conc int) (Mapping, error) {
	res, err := solve(ctx, m.request(w, t, conc), false)
	if err != nil {
		return nil, err
	}
	return res.Mapping, nil
}

// Pipeline runs the full RAHTM pipeline and returns the detailed result
// (mapping, node graph, phase statistics). Tori with non-power-of-two
// dimensions are handled by §III-B partitioning (power-of-two boxes mapped
// independently after a cut-minimizing split).
//
// Deprecated: call Solve with a Request instead; Result.Detail is this
// method's return value.
func (m Mapper) Pipeline(w *Workload, t *Torus, conc int) (*PipelineResult, error) {
	return m.PipelineCtx(context.Background(), w, t, conc)
}

// PipelineCtx is Pipeline under a context. A canceled ctx returns ctx.Err();
// an expired deadline returns a valid best-effort result with
// Stats.Degraded set.
//
// Deprecated: call Solve with a Request instead; Result.Detail is this
// method's return value.
func (m Mapper) PipelineCtx(ctx context.Context, w *Workload, t *Torus, conc int) (*PipelineResult, error) {
	res, err := solve(ctx, m.request(w, t, conc), false)
	if err != nil {
		return nil, err
	}
	return res.Detail, nil
}

// Baseline mappers (see §IV "Other mappings").

// NewPermutation builds a BG/Q-style dimension-order mapper from a spec
// such as "ABCDET".
func NewPermutation(spec string) ProcMapper { return mappers.Permutation{Spec: spec} }

// NewHilbert builds the Hilbert-curve mapper.
func NewHilbert() ProcMapper { return mappers.Hilbert{} }

// NewRHT builds the Rubik-style hierarchical tiling mapper.
func NewRHT() ProcMapper { return mappers.RHT{} }

// NewGreedyHopBytes builds the routing-unaware greedy mapper.
func NewGreedyHopBytes() ProcMapper { return mappers.GreedyHopBytes{} }

// NewRandom builds a seeded random mapper.
func NewRandom(seed int64) ProcMapper { return mappers.Random{Seed: seed} }

// NewRecursiveBisection builds the Chaco-style recursive-bisection mapper
// (topology-aware, routing-unaware).
func NewRecursiveBisection() ProcMapper { return mappers.RecursiveBisection{} }

// DefaultMapper returns the machine default (ABCDET-style) for t — the
// registry's "default" entry.
func DefaultMapper(t *Torus) ProcMapper { return mustMapper("default")(t) }

// mustMapper resolves a built-in registry name; the built-ins are always
// registered, so failure is a programming error.
func mustMapper(name string) MapperFactory {
	f, err := MapperByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// StandardPermutations returns the paper's dimension-permutation baselines
// generalized to t's dimensionality: the default (ABCDET-style), the T-first
// variant (TABCDE-style), and the interleaved variant (ACEBDT-style).
// Variants whose spec coincides with an earlier one are dropped — on 1-D and
// 2-D tori the interleaved order equals the default, so those tori get two
// baselines rather than a duplicated pair.
func StandardPermutations(t *Torus) []ProcMapper {
	nd := t.NumDims()
	letters := make([]byte, 0, nd+1)
	for d := 0; d < nd; d++ {
		letters = append(letters, byte('A'+d))
	}
	def := string(letters) + "T"
	tFirst := "T" + string(letters)
	var inter []byte
	for d := 0; d < nd; d += 2 {
		inter = append(inter, byte('A'+d))
	}
	for d := 1; d < nd; d += 2 {
		inter = append(inter, byte('A'+d))
	}
	interleaved := string(inter) + "T"

	specs := []string{def, tFirst, interleaved}
	seen := make(map[string]bool, len(specs))
	out := make([]ProcMapper, 0, len(specs))
	for _, spec := range specs {
		if seen[spec] {
			continue
		}
		seen[spec] = true
		out = append(out, mappers.Permutation{Spec: spec})
	}
	return out
}

// StandardMappers returns the paper's full comparison set for t: the three
// permutation baselines, Hilbert, RHT, and RAHTM — in Figure 8's order with
// the default mapping first (it is the baseline everything is normalized
// to). Each entry is built through the mapper registry, so the set stays
// consistent with what MapperByName serves over the wire.
func StandardMappers(t *Torus) []ProcMapper {
	out := StandardPermutations(t)
	for _, name := range []string{"hilbert", "rht", "rahtm"} {
		out = append(out, mustMapper(name)(t))
	}
	return out
}

// Measure computes mapping-quality metrics under the minimal adaptive
// routing approximation.
func Measure(t *Torus, g *Comm, m Mapping) Report {
	return metrics.Measure(t, g, m, routing.MinimalAdaptive{})
}

// MCL returns the maximum channel load of g mapped by m under the minimal
// adaptive routing approximation.
func MCL(t *Torus, g *Comm, m Mapping) float64 {
	return routing.MaxChannelLoad(t, g, m, routing.MinimalAdaptive{})
}

// HopBytes returns the routing-oblivious hop-bytes metric.
func HopBytes(t *Torus, g *Comm, m Mapping) float64 {
	return metrics.HopBytes(t, g, m)
}

// CommTime estimates one iteration's communication time under the network
// model (zero Model takes BG/Q-flavored defaults).
func CommTime(t *Torus, g *Comm, m Mapping, model Model) (*CommReport, error) {
	return netsim.CommTime(t, g, m, model)
}
